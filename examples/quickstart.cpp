// Quickstart: the library's front door in three lines -- name a scenario as
// a spec string, compile it into a plan, solve.
//
//   $ ./quickstart
//
//   1. api::SolverSpec  -- a textual, declarative scenario description
//      (matrix order, cube dimension, ordering, backend, pipelining);
//   2. api::Solver::plan -- compiles the spec once (ordering sequences,
//      sweep schedule, block layout, auto pipelining degree) into an
//      immutable plan you reuse for every matrix of that shape;
//   3. plan.solve       -- runs the distributed one-sided Jacobi method on
//      the chosen backend and returns one unified SolveReport;
//   4. svc::SolverService -- the serving layer: submit jobs as (spec
//      string, matrix), a worker pool resolves plans through an LRU cache
//      and fulfills futures with reports bit-identical to plan.solve.
#include <cstdio>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"
#include "svc/service.hpp"

int main() {
  using namespace jmh;

  // A random 16x16 symmetric matrix with entries uniform on [-1, 1] -- the
  // same workload as the paper's convergence experiments.
  Xoshiro256 rng(2026);
  const la::Matrix a = la::random_uniform_symmetric(16, rng);

  // The whole scenario as one string: degree-4 ordering on a 2-cube
  // (4 nodes, 8 column blocks), solved in-process.
  const api::SolverSpec spec =
      api::SolverSpec::parse("backend=inline,ordering=d4,m=16,d=2");
  std::printf("spec: %s\n\n", spec.to_string().c_str());

  // Compile once, solve many. The plan is immutable and thread-shareable;
  // plan.solve(b) for any other 16x16 symmetric matrix reuses the same
  // precomputed ordering and schedule.
  const api::SolvePlan plan = api::Solver::plan(spec);
  std::printf("plan: %s ordering, %zu blocks, %zu steps/sweep\n\n",
              ord::to_string(plan.ordering().kind()).c_str(), plan.ordering().num_blocks(),
              plan.ordering().steps_per_sweep());

  const api::SolveReport r = plan.solve(a);
  std::printf("%s\n", r.summary().c_str());

  std::printf("eigenvalues:\n ");
  for (double ev : r.eigenvalues) std::printf(" %8.4f", ev);
  std::printf("\n\n");

  // Verify: residual ||A v - lambda v|| and eigenvector orthonormality.
  const double residual = la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors);
  const double orth = la::orthogonality_defect(r.eigenvectors);
  std::printf("max relative residual ||Av - lv||/||A||_F : %.2e\n", residual);
  std::printf("orthogonality defect  ||V^T V - I||_max   : %.2e\n", orth);

  // Same spec, different backend: one key changes the substrate, nothing
  // else. backend=mpi runs the nodes as real threads; backend=sim adds the
  // paper's modeled communication time.
  api::SolverSpec sim_spec = spec;
  sim_spec.backend = api::Backend::Sim;
  sim_spec.pipelining = api::PipeliningPolicy::Auto;
  const api::SolveReport sim_r = api::Solver::solve(sim_spec, a);
  std::printf("\nsame scenario on the simulated machine (pipeline=auto):\n%s",
              sim_r.summary().c_str());

  // The second first-class workload: task=svd factors a rectangular input
  // through the SAME machinery (one-sided Jacobi orthogonalizes columns
  // either way). m counts columns, rows the input height; the report fills
  // singular_values (descending) and u, with V in the eigenvectors slot.
  Xoshiro256 svd_rng(7);
  const la::Matrix rect = la::random_uniform(24, 16, svd_rng);
  const api::SolveReport svd_r =
      api::Solver::solve(api::SolverSpec::parse("task=svd,backend=inline,ordering=d4,"
                                                "m=16,rows=24,d=2"),
                         rect);
  const double svd_res = la::svd_residual(rect, svd_r.singular_values, svd_r.u,
                                          svd_r.eigenvectors);
  std::printf("\ntask=svd on a 24x16 input: sigma_max %.4f, sigma_min %.4f, "
              "residual %.2e\n",
              svd_r.singular_values.front(), svd_r.singular_values.back(), svd_res);

  // Serving many solves: the svc layer. Jobs are (spec string, matrix);
  // a worker pool resolves plans through an LRU cache (one compilation for
  // all three jobs below) and fulfills futures bit-identical to
  // plan.solve. This is the README's 10-line service snippet.
  svc::SolverService service({.workers = 2, .queue_capacity = 8, .cache_capacity = 4});
  std::vector<std::future<api::SolveReport>> jobs;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Xoshiro256 job_rng(seed);
    jobs.push_back(service.submit("backend=inline,ordering=d4,m=16,d=2",
                                  la::random_uniform_symmetric(16, job_rng)));
  }
  bool served_ok = true;
  for (auto& job : jobs) served_ok = job.get().converged && served_ok;
  service.drain();  // counters are recorded just after promise fulfillment
  std::printf("\nserved through svc::SolverService:\n%s",
              service.metrics().summary().c_str());

  return r.converged && sim_r.converged && svd_r.converged && served_ok && residual < 1e-9 &&
                 orth < 1e-10 && svd_res < 1e-10
             ? 0
             : 1;
}
