// eigen_service: replay a workload of spec strings + seeds through the
// svc::SolverService and print a throughput/latency report -- the repo's
// "serve heavy traffic" harness in one binary.
//
//   $ ./eigen_service [--workload FILE] [--workers N] [--queue N] [--cache N]
//                     [--coalesce N] [--repeat K] [--shed] [--json]
//                     [--deadline-ms N] [--chaos SEED]
//                     [--trace-out FILE] [--metrics-out FILE]
//
//     --workload FILE  replayable workload: one job per line,
//                        <seed> <spec-string>
//                      '#' starts a comment, blank lines are skipped
//                      (default: a built-in mixed-scenario workload)
//     --workers N      service worker threads (default: hardware pick)
//     --queue N        JobQueue capacity -- the backpressure bound (default 64)
//     --cache N        PlanCache capacity (default 32)
//     --coalesce N     max same-spec jobs coalesced per worker pull (default 4)
//     --repeat K       replay the workload K times (default 1)
//     --shed           use try_submit and count shed jobs instead of blocking
//     --json           also print one api::report_to_json line per job, in
//                      submission order
//     --deadline-ms N  end-to-end per-job deadline (queue wait + solve);
//                      expired jobs fail with DEADLINE_EXCEEDED
//     --chaos SEED     deterministic service chaos (dispatcher stalls +
//                      deadline storms) keyed by SEED; replays exactly
//     --trace-out FILE arm the obs:: trace recorder for the whole replay and
//                      write a Chrome trace_event JSON (chrome://tracing /
//                      Perfetto loadable) after the drain: per-job
//                      queue-wait, solve, sweep, and comm spans
//     --metrics-out FILE
//                      write the process-wide obs::Registry (service
//                      counters, exec pool gauges, latency histogram) as
//                      JSON after the drain
//
// Exit status: 0 iff every job was served and converged. With --deadline-ms
// or --chaos active, DEADLINE_EXCEEDED / CANCELLED / SHED failures are
// EXPECTED degradation, counted and reported but not fatal; any other
// failure class still exits 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/report.hpp"
#include "common/rng.hpp"
#include "la/sym_gen.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"

namespace {

struct WorkItem {
  std::uint64_t seed = 0;
  std::string spec;
};

// The default mixed workload: repeated scenarios (so the plan cache pays
// off) across all three backends, sized to finish in seconds.
std::vector<WorkItem> builtin_workload() {
  std::vector<WorkItem> items;
  const std::vector<std::string> specs = {
      "backend=inline,ordering=d4,m=32,d=2",
      "backend=inline,ordering=minalpha,m=32,d=2,pipeline=auto",
      "backend=mpi,ordering=d4,m=16,d=2",
      "backend=sim,ordering=pbr,m=24,d=2,pipeline=auto",
      "task=svd,backend=inline,ordering=d4,m=24,rows=36,d=2",
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    for (const std::string& spec : specs) items.push_back({seed, spec});
  return items;
}

std::vector<WorkItem> load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "eigen_service: cannot open workload file '%s'\n", path.c_str());
    std::exit(2);
  }
  std::vector<WorkItem> items;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // A non-blank line MUST parse: silently dropping a typo'd job would
    // let the driver exit 0 while claiming every job was served.
    std::istringstream ls(line);
    WorkItem item;
    if (!(ls >> item.seed >> item.spec)) {
      std::fprintf(stderr, "eigen_service: %s:%zu: expected '<seed> <spec>'\n", path.c_str(),
                   lineno);
      std::exit(2);
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jmh;
  using Clock = std::chrono::steady_clock;

  std::string workload_path;
  svc::ServiceConfig cfg;
  cfg.queue_capacity = 64;
  cfg.cache_capacity = 32;
  cfg.max_coalesce = 4;
  int repeat = 1;
  bool shed = false;
  bool json = false;
  std::uint64_t deadline_ms = 0;
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "eigen_service: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workload")) workload_path = next_arg("--workload");
    else if (!std::strcmp(argv[i], "--workers"))
      cfg.workers = static_cast<std::size_t>(std::atoll(next_arg("--workers")));
    else if (!std::strcmp(argv[i], "--queue"))
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(next_arg("--queue")));
    else if (!std::strcmp(argv[i], "--cache"))
      cfg.cache_capacity = static_cast<std::size_t>(std::atoll(next_arg("--cache")));
    else if (!std::strcmp(argv[i], "--coalesce"))
      cfg.max_coalesce = static_cast<std::size_t>(std::atoll(next_arg("--coalesce")));
    else if (!std::strcmp(argv[i], "--repeat")) repeat = std::atoi(next_arg("--repeat"));
    else if (!std::strcmp(argv[i], "--shed")) shed = true;
    else if (!std::strcmp(argv[i], "--json")) json = true;
    else if (!std::strcmp(argv[i], "--deadline-ms"))
      deadline_ms = static_cast<std::uint64_t>(std::atoll(next_arg("--deadline-ms")));
    else if (!std::strcmp(argv[i], "--chaos"))
      cfg.chaos.seed = static_cast<std::uint64_t>(std::atoll(next_arg("--chaos")));
    else if (!std::strcmp(argv[i], "--trace-out")) trace_out = next_arg("--trace-out");
    else if (!std::strcmp(argv[i], "--metrics-out")) metrics_out = next_arg("--metrics-out");
    else {
      std::fprintf(stderr,
                   "usage: %s [--workload FILE] [--workers N] [--queue N] [--cache N]\n"
                   "          [--coalesce N] [--repeat K] [--shed] [--json]\n"
                   "          [--deadline-ms N] [--chaos SEED]\n"
                   "          [--trace-out FILE] [--metrics-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<WorkItem> base =
      workload_path.empty() ? builtin_workload() : load_workload(workload_path);
  if (base.empty()) {
    std::fprintf(stderr, "eigen_service: empty workload\n");
    return 2;
  }

  std::vector<WorkItem> items;
  items.reserve(base.size() * static_cast<std::size_t>(std::max(1, repeat)));
  for (int k = 0; k < std::max(1, repeat); ++k)
    items.insert(items.end(), base.begin(), base.end());

  svc::SolverService service(cfg);
  std::vector<std::future<api::SolveReport>> futures;
  futures.reserve(items.size());
  std::size_t shed_jobs = 0;

  // Process-wide arming: every span over the whole replay (queue waits,
  // coalescing, sweeps, comm) lands in one trace, whatever the specs say.
  if (!trace_out.empty()) obs::arm_tracing();

  const auto t0 = Clock::now();
  for (const WorkItem& item : items) {
    // The input shape comes from the spec (task=evd: symmetric m x m;
    // task=svd: general rows x m); a bad spec still gets submitted so the
    // failure surfaces uniformly through the job's future.
    api::SolverSpec parsed;
    try {
      parsed = api::SolverSpec::parse(item.spec);
    } catch (const std::exception&) {
    }
    Xoshiro256 rng(item.seed);
    // svd/pca take a general rows x m data matrix (wide when rows < m);
    // evd/gevd take a symmetric m x m (gevd's B-side comes from bseed).
    const bool rect = parsed.task == api::Task::Svd || parsed.task == api::Task::Pca;
    la::Matrix a = rect ? la::random_uniform(parsed.input_rows(), parsed.m, rng)
                        : la::random_uniform_symmetric(parsed.m, rng);
    const svc::SubmitOptions sopts{.deadline_ms = deadline_ms};
    if (shed) {
      auto f = service.try_submit(item.spec, std::move(a), sopts);
      if (f) futures.push_back(std::move(*f));
      else ++shed_jobs;
    } else {
      futures.push_back(service.submit(item.spec, std::move(a), sopts));
    }
  }
  service.drain();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  if (!trace_out.empty()) obs::disarm_tracing();  // stop capturing at the drain

  // With --deadline-ms or --chaos active, deadline/cancel/shed failures are
  // the deliberately provoked degraded mode -- the harness reports them but
  // only treats OTHER failure classes (corruption after retries, invalid
  // input, internal errors) as fatal.
  const bool degradation_expected = deadline_ms > 0 || cfg.chaos.seed != 0;
  std::size_t served = 0;
  std::size_t failed = 0;
  std::size_t degraded = 0;
  std::size_t unconverged = 0;
  for (auto& f : futures) {
    try {
      const api::SolveReport r = f.get();
      ++served;
      if (!r.converged) ++unconverged;
      if (json) std::printf("%s\n", api::report_to_json(r).c_str());
    } catch (const api::SolveError& e) {
      const bool expected = degradation_expected &&
                            (e.status() == api::SolveStatus::DeadlineExceeded ||
                             e.status() == api::SolveStatus::Cancelled ||
                             e.status() == api::SolveStatus::Shed);
      if (expected) ++degraded;
      else {
        ++failed;
        std::fprintf(stderr, "job failed: %s\n", e.what());
      }
    } catch (const std::exception& e) {
      ++failed;
      std::fprintf(stderr, "job failed: %s\n", e.what());
    }
  }

  const svc::Metrics m = service.metrics();
  std::printf("workload : %zu jobs (%zu scenarios x %d replays)%s\n", items.size(),
              base.size(), std::max(1, repeat), shed ? " [shedding]" : "");
  std::printf("%s", m.summary().c_str());
  std::printf("wall     : %.3fs  ->  %.1f jobs/s\n", wall_s,
              wall_s > 0 ? static_cast<double>(served) / wall_s : 0.0);
  if (shed) std::printf("shed     : %zu jobs rejected at admission\n", shed_jobs);
  if (degraded) std::printf("degraded : %zu jobs hit deadline/cancel/shed (expected mode)\n", degraded);
  if (failed || unconverged)
    std::printf("errors   : %zu failed, %zu unconverged\n", failed, unconverged);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "eigen_service: cannot write trace file '%s'\n", trace_out.c_str());
      return 2;
    }
    obs::write_chrome_trace(out);
    std::printf("trace    : %s (%llu events, %llu dropped)\n", trace_out.c_str(),
                static_cast<unsigned long long>(obs::trace_recorded_events()),
                static_cast<unsigned long long>(obs::trace_dropped_events()));
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "eigen_service: cannot write metrics file '%s'\n",
                   metrics_out.c_str());
      return 2;
    }
    out << obs::Registry::global().render_json() << '\n';
    std::printf("metrics  : %s\n", metrics_out.c_str());
  }

  return failed == 0 && unconverged == 0 ? 0 : 1;
}
