// Sweep visualizer: print, step by step, which column blocks meet on which
// node during one sweep of a chosen ordering on a small hypercube --
// exactly the table one draws when checking a Jacobi ordering by hand
// (every block pair must appear exactly once). The scenario is named by an
// api::SolverSpec string, the same format the solver CLI and benches use.
//
//   $ ./sweep_visualizer ["key=value,..."]   (default "ordering=br,d=2";
//                                             only ordering and d are used)
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "api/spec.hpp"
#include "ord/schedule.hpp"

int main(int argc, char** argv) {
  using namespace jmh::ord;

  jmh::api::SolverSpec spec;
  try {
    spec = jmh::api::SolverSpec::parse(argc > 1 ? argv[1] : "ordering=br,d=2");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: %s [\"ordering=br|pbr|d4|minalpha,d=1..4\"]\n%s\n", argv[0],
                 e.what());
    return 2;
  }
  const OrderingKind kind = spec.ordering;
  const int d = spec.d;
  if (d > 4) {
    std::fprintf(stderr, "d > 4 prints unwieldy tables; pick d in 1..4\n");
    return 2;
  }

  const JacobiOrdering ordering(kind, d);
  BlockTracker tracker(d);
  const auto transitions = ordering.sweep_transitions(0);
  const auto steps = run_sweep(ordering, 0, tracker);

  std::printf("%s ordering, %d-cube: %zu nodes, %zu blocks, %zu steps\n\n",
              to_string(kind).c_str(), d, std::size_t{1} << d, ordering.num_blocks(),
              ordering.steps_per_sweep());
  std::printf("step | per-node meetings (fixed,mobile)%*s| next transition\n",
              static_cast<int>(std::size_t{8} << d) - 32 > 0 ? 0 : 1, "");
  for (std::size_t s = 0; s < steps.size(); ++s) {
    std::printf("%4zu |", s);
    for (const auto& m : steps[s]) std::printf(" (%2u,%2u)", m.fixed, m.mobile);
    const auto& t = transitions[s];
    std::printf("  | link %d%s\n", t.link, t.division ? " DIVISION" : "");
  }

  const auto verify = verify_all_pairs_once(ordering, 0, BlockTracker(d));
  std::printf("\nall-pairs-exactly-once check: %s%s\n", verify.ok ? "PASSED" : "FAILED -- ",
              verify.error.c_str());
  return verify.ok ? 0 : 1;
}
