// Sweep visualizer: print, step by step, which column blocks meet on which
// node during one sweep of a chosen ordering on a small hypercube --
// exactly the table one draws when checking a Jacobi ordering by hand
// (every block pair must appear exactly once).
//
//   $ ./sweep_visualizer [d] [ordering]    (defaults: d = 2, br)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ord/schedule.hpp"

int main(int argc, char** argv) {
  using namespace jmh::ord;

  const int d = argc > 1 ? std::atoi(argv[1]) : 2;
  OrderingKind kind = OrderingKind::BR;
  if (argc > 2) {
    if (!std::strcmp(argv[2], "br")) kind = OrderingKind::BR;
    else if (!std::strcmp(argv[2], "pbr")) kind = OrderingKind::PermutedBR;
    else if (!std::strcmp(argv[2], "d4")) kind = OrderingKind::Degree4;
    else if (!std::strcmp(argv[2], "minalpha")) kind = OrderingKind::MinAlpha;
    else {
      std::fprintf(stderr, "unknown ordering '%s' (br|pbr|d4|minalpha)\n", argv[2]);
      return 2;
    }
  }
  if (d < 1 || d > 4) {
    std::fprintf(stderr, "usage: %s [d in 1..4] [br|pbr|d4|minalpha]\n", argv[0]);
    return 2;
  }

  const JacobiOrdering ordering(kind, d);
  BlockTracker tracker(d);
  const auto transitions = ordering.sweep_transitions(0);
  const auto steps = run_sweep(ordering, 0, tracker);

  std::printf("%s ordering, %d-cube: %zu nodes, %zu blocks, %zu steps\n\n",
              to_string(kind).c_str(), d, std::size_t{1} << d, ordering.num_blocks(),
              ordering.steps_per_sweep());
  std::printf("step | per-node meetings (fixed,mobile)%*s| next transition\n",
              static_cast<int>(std::size_t{8} << d) - 32 > 0 ? 0 : 1, "");
  for (std::size_t s = 0; s < steps.size(); ++s) {
    std::printf("%4zu |", s);
    for (const auto& m : steps[s]) std::printf(" (%2u,%2u)", m.fixed, m.mobile);
    const auto& t = transitions[s];
    std::printf("  | link %d%s\n", t.link, t.division ? " DIVISION" : "");
  }

  const auto verify = verify_all_pairs_once(ordering, 0, BlockTracker(d));
  std::printf("\nall-pairs-exactly-once check: %s%s\n", verify.ok ? "PASSED" : "FAILED -- ",
              verify.error.c_str());
  return verify.ok ? 0 : 1;
}
