// Ordering explorer: print and compare the exchange-phase sequences of the
// four orderings for a chosen phase index e, then compile an api::SolverSpec
// scenario and show what its plan precomputes (the auto pipelining degree
// per ordering) -- how a spec's ordering key translates into link schedules.
//
//   $ ./ordering_explorer [e] ["key=value,..."]
//     e     phase index, 1..20 (default 5)
//     spec  scenario whose m/machine the auto-q column uses
//           (default "m=4096,d=5,pipeline=auto,ts=1000,tw=100")
//
// Shows each sequence, its alpha (deep-pipelining figure of merit), its
// degree (shallow-pipelining figure of merit), the per-link histogram,
// validates the Hamiltonian-path property, and prints the sweep-level
// pipelining degree the facade's Auto policy would pick for each ordering.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "api/spec.hpp"
#include "ord/bounds.hpp"
#include "ord/ordering.hpp"
#include "pipe/optimizer.hpp"

namespace {

void describe(const char* name, const jmh::ord::LinkSequence& seq) {
  std::printf("%s (e = %d, K = %zu)\n", name, seq.e(), seq.size());
  std::printf("  sequence : %s\n", seq.to_string().c_str());
  std::printf("  alpha    : %d (lower bound %llu)\n", seq.alpha(),
              static_cast<unsigned long long>(jmh::ord::alpha_lower_bound(seq.e())));
  std::printf("  degree   : %d\n", seq.degree());
  std::printf("  histogram:");
  for (int count : seq.histogram()) std::printf(" %d", count);
  std::printf("\n  valid e-sequence (Hamiltonian path): %s\n\n",
              seq.is_valid() ? "yes" : "NO -- BUG");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jmh::ord;
  const int e = argc > 1 ? std::atoi(argv[1]) : 5;
  if (e < 1 || e > 20) {
    std::fprintf(stderr, "usage: %s [e in 1..20] [\"key=value,...\"]\n", argv[0]);
    return 2;
  }
  jmh::api::SolverSpec spec;
  try {
    spec = jmh::api::SolverSpec::parse(argc > 2 ? argv[2]
                                               : "m=4096,d=5,pipeline=auto,ts=1000,tw=100");
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bad spec: %s\n", ex.what());
    return 2;
  }

  std::printf("Exchange-phase sequences for phase e = %d\n", e);
  std::printf("=========================================\n\n");
  describe("BR (Mantharam-Eberlein block-recursive)", make_exchange_sequence(OrderingKind::BR, e));
  describe("permuted-BR (this paper, section 3.2)",
           make_exchange_sequence(OrderingKind::PermutedBR, e));
  if (e >= 4)
    describe("degree-4 (this paper, section 3.3)",
             make_exchange_sequence(OrderingKind::Degree4, e));
  else
    std::printf("degree-4: not defined for e < 4 (falls back to BR in full sweeps)\n\n");
  describe("min-alpha (paper sequences for e <= 6, else permuted-BR)",
           make_exchange_sequence(OrderingKind::MinAlpha, e));

  std::printf("Reading guide: alpha bounds the deep-pipelining kernel cost\n");
  std::printf("(e*Ts + alpha*S*Tw); the degree is the number of messages a node can\n");
  std::printf("push in parallel under shallow pipelining. BR: alpha = 2^{e-1}, degree 2.\n\n");

  // What the facade's Auto policy makes of these sequences: the sweep-wide
  // degree of pipe::find_optimal_sweep_q for the scenario's m and machine.
  const std::uint64_t q_max =
      std::max<std::uint64_t>(1, spec.m / (std::uint64_t{2} << spec.d));
  std::printf("Auto pipelining for \"m=%zu,d=%d,ts=%g,tw=%g\" (Qmax = %llu):\n", spec.m, spec.d,
              spec.machine.ts, spec.machine.tw, static_cast<unsigned long long>(q_max));
  std::printf("  ordering      auto-Q   per-sweep exchange cost\n");
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                    OrderingKind::MinAlpha}) {
    const JacobiOrdering ordering(kind, spec.d);
    jmh::pipe::ProblemParams prob;
    prob.d = spec.d;
    prob.m = static_cast<double>(spec.m);
    prob.rows = static_cast<double>(spec.rows);
    const auto best = jmh::pipe::find_optimal_sweep_q(ordering, prob, spec.machine, q_max);
    char q_label[24];
    std::snprintf(q_label, sizeof q_label, "%llu%s",
                  static_cast<unsigned long long>(best.q), best.deep ? " (deep)" : "");
    std::printf("  %-12s %-11s %14.4g\n", to_string(kind).c_str(), q_label, best.cost);
  }
  return 0;
}
