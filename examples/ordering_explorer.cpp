// Ordering explorer: print and compare the exchange-phase sequences of the
// four orderings for a chosen phase index e.
//
//   $ ./ordering_explorer [e]        (default e = 5)
//
// Shows each sequence, its alpha (deep-pipelining figure of merit), its
// degree (shallow-pipelining figure of merit), the per-link histogram, and
// validates the Hamiltonian-path property.
#include <cstdio>
#include <cstdlib>

#include "ord/bounds.hpp"
#include "ord/ordering.hpp"

namespace {

void describe(const char* name, const jmh::ord::LinkSequence& seq) {
  std::printf("%s (e = %d, K = %zu)\n", name, seq.e(), seq.size());
  std::printf("  sequence : %s\n", seq.to_string().c_str());
  std::printf("  alpha    : %d (lower bound %llu)\n", seq.alpha(),
              static_cast<unsigned long long>(jmh::ord::alpha_lower_bound(seq.e())));
  std::printf("  degree   : %d\n", seq.degree());
  std::printf("  histogram:");
  for (int count : seq.histogram()) std::printf(" %d", count);
  std::printf("\n  valid e-sequence (Hamiltonian path): %s\n\n",
              seq.is_valid() ? "yes" : "NO -- BUG");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jmh::ord;
  const int e = argc > 1 ? std::atoi(argv[1]) : 5;
  if (e < 1 || e > 20) {
    std::fprintf(stderr, "usage: %s [e in 1..20]\n", argv[0]);
    return 2;
  }

  std::printf("Exchange-phase sequences for phase e = %d\n", e);
  std::printf("=========================================\n\n");
  describe("BR (Mantharam-Eberlein block-recursive)", make_exchange_sequence(OrderingKind::BR, e));
  describe("permuted-BR (this paper, section 3.2)",
           make_exchange_sequence(OrderingKind::PermutedBR, e));
  if (e >= 4)
    describe("degree-4 (this paper, section 3.3)",
             make_exchange_sequence(OrderingKind::Degree4, e));
  else
    std::printf("degree-4: not defined for e < 4 (falls back to BR in full sweeps)\n\n");
  describe("min-alpha (paper sequences for e <= 6, else permuted-BR)",
           make_exchange_sequence(OrderingKind::MinAlpha, e));

  std::printf("Reading guide: alpha bounds the deep-pipelining kernel cost\n");
  std::printf("(e*Ts + alpha*S*Tw); the degree is the number of messages a node can\n");
  std::printf("push in parallel under shallow pipelining. BR: alpha = 2^{e-1}, degree 2.\n");
  return 0;
}
